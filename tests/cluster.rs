//! Cluster e2e suite: real `milr serve --role coordinator|worker`
//! processes talking HTTP over loopback, plus a single-node `milr
//! serve` over the same sharded snapshot as the ground truth.
//!
//! The externally visible contract under test:
//!
//! * a healthy cluster's `/cluster/rank` page is **bit-identical**
//!   (indices, distance bits, NLDD bits) to single-node `/rank`;
//! * killing a worker mid-load never surfaces a client error — every
//!   request still answers `200`, flagged `"partial": true` with the
//!   missing shard ids/ranges, and the degraded page is exactly the
//!   single-node ranking with the missing bag ranges filtered out;
//! * a replacement worker registered at a new address restores full
//!   pages (and the eviction/rejoin counters record the episode);
//! * a worker serving an older snapshot generation is resynced, never
//!   silently merged.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use milr::serve::Json;
use milr::testkit::synthetic_database;

/// Scratch directory holding the sharded snapshot; removed on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    /// The sharded snapshot path every daemon in the test serves.
    fn snapshot(&self) -> PathBuf {
        self.dir.join("db.shards")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Writes the standard e2e corpus — 24 bags over 4 shards (capacity
/// 6), generation 1, no tombstones (so global and live indices agree).
fn sharded_scratch(test: &str) -> Scratch {
    let dir = std::env::temp_dir().join(format!("milr_cluster_e2e_{test}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let scratch = Scratch { dir };
    let db = synthetic_database(24, 8, 3);
    let mut store = milr::store::ShardedDatabase::from_database(&db, scratch.snapshot(), 6)
        .expect("shard the snapshot");
    store.flush().expect("flush the snapshot");
    assert_eq!(store.shard_count(), 4, "the scenario expects 4 shards");
    scratch
}

/// A `milr` child process bound to an ephemeral port, killed on drop.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_milr"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn milr");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        let addr = banner
            .strip_prefix("milrd listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|addr| addr.parse().ok())
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"));
        Daemon { child, addr }
    }

    /// Spawns a worker over `snapshot` with a long keep-alive idle
    /// timeout (pooled coordinator sockets must survive debug-build
    /// training pauses between scatters).
    fn worker(snapshot: &Path, index: usize, count: usize) -> Daemon {
        Daemon::spawn(&[
            "serve",
            "--role",
            "worker",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--worker-index",
            &index.to_string(),
            "--worker-count",
            &count.to_string(),
            "--addr",
            "127.0.0.1:0",
            "--read-timeout-ms",
            "30000",
        ])
    }

    /// Spawns a coordinator fanning out to `workers`, with the health
    /// probe and per-worker deadline knobs under test control.
    fn coordinator(snapshot: &Path, workers: &[&Daemon], extra_args: &[&str]) -> Daemon {
        let addrs = workers
            .iter()
            .map(|w| w.addr.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut args = vec![
            "serve",
            "--role",
            "coordinator",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--worker-addrs",
            &addrs,
            "--addr",
            "127.0.0.1:0",
        ];
        args.extend_from_slice(extra_args);
        Daemon::spawn(&args)
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Sends `request` raw to `addr` and reads the full response to EOF.
fn raw_roundtrip(addr: SocketAddr, request: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(request)?;
    stream.shutdown(Shutdown::Write)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    Ok(response)
}

fn get(addr: SocketAddr, path: &str) -> Vec<u8> {
    raw_roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("request succeeds")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Vec<u8> {
    raw_roundtrip(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("request succeeds")
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    let rest = text.strip_prefix("HTTP/1.1 ")?;
    rest.split_whitespace().next()?.parse().ok()
}

fn json_of(response: &[u8]) -> Json {
    let text = String::from_utf8_lossy(response);
    let body = match text.split_once("\r\n\r\n") {
        Some((_, body)) => body,
        None => "",
    };
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON body ({e}): {body:?}"))
}

/// Extracts `(index, distance bit pattern)` pairs — the bit-identity
/// comparison unit shared with the in-crate integration tests.
fn ranking_pairs(json: &Json) -> Vec<(u64, u64)> {
    let Some(entries) = json.get("ranking").and_then(Json::as_array) else {
        panic!("response has no ranking array: {}", json.dump());
    };
    entries
        .iter()
        .map(|entry| {
            let index = entry
                .get("index")
                .and_then(Json::as_u64)
                .expect("ranking entry index");
            let distance = match entry.get("distance") {
                Some(Json::Num(d)) => *d,
                other => panic!("ranking entry distance missing: {other:?}"),
            };
            (index, distance.to_bits())
        })
        .collect()
}

fn nldd_bits(json: &Json) -> u64 {
    match json.get("nldd") {
        Some(Json::Num(v)) => v.to_bits(),
        other => panic!("response has no nldd: {other:?}"),
    }
}

fn counter(status: &Json, key: &str) -> u64 {
    status
        .get("cluster")
        .and_then(|c| c.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {key} missing: {}", status.dump()))
}

#[test]
fn healthy_cluster_pages_are_bit_identical_to_single_node_over_the_wire() {
    let scratch = sharded_scratch("identity");
    let snapshot = scratch.snapshot();
    let worker_a = Daemon::worker(&snapshot, 0, 2);
    let worker_b = Daemon::worker(&snapshot, 1, 2);
    let coordinator = Daemon::coordinator(
        &snapshot,
        &[&worker_a, &worker_b],
        &[
            "--worker-deadline-ms",
            "10000",
            "--health-interval-ms",
            "60000",
        ],
    );
    let single = Daemon::spawn(&[
        "serve",
        "--snapshot",
        snapshot.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
    ]);

    // Distinct concepts, a k past the corpus size, and a repeat (cache
    // hit) — every page must match bit for bit.
    let queries = [
        "positives=0,4&negatives=1&k=8",
        "positives=2,9&negatives=5,11&k=24",
        "positives=7&k=5",
        "positives=0,4&negatives=1&k=8",
    ];
    for query in queries {
        let response = get(coordinator.addr, &format!("/cluster/rank?{query}"));
        assert_eq!(status_of(&response), Some(200), "query {query} must serve");
        let cluster = json_of(&response);
        assert_eq!(
            cluster.get("partial").and_then(Json::as_bool),
            Some(false),
            "healthy cluster must never degrade: {}",
            cluster.dump()
        );
        let reference = json_of(&get(single.addr, &format!("/rank?{query}")));
        assert_eq!(
            ranking_pairs(&cluster),
            ranking_pairs(&reference),
            "cluster page diverged from single-node for {query}"
        );
        assert_eq!(
            nldd_bits(&cluster),
            nldd_bits(&reference),
            "trained concept diverged for {query}"
        );
    }

    // The `milr cluster status` CLI reads the same coordinator.
    let output = Command::new(env!("CARGO_BIN_EXE_milr"))
        .args(["cluster", "status", "--addr", &coordinator.addr.to_string()])
        .output()
        .expect("run milr cluster status");
    assert!(output.status.success(), "cluster status must exit 0");
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(
        text.contains("coordinator") && text.contains("ranks 4 (partial 0)"),
        "status output accounts for the 4 ranks: {text}"
    );
}

#[test]
fn non_default_aggregators_scatter_gather_bit_identically_to_single_node() {
    let scratch = sharded_scratch("aggregators");
    let snapshot = scratch.snapshot();
    let worker_a = Daemon::worker(&snapshot, 0, 2);
    let worker_b = Daemon::worker(&snapshot, 1, 2);
    let coordinator = Daemon::coordinator(
        &snapshot,
        &[&worker_a, &worker_b],
        &[
            "--worker-deadline-ms",
            "10000",
            "--health-interval-ms",
            "60000",
        ],
    );
    let single = Daemon::spawn(&[
        "serve",
        "--snapshot",
        snapshot.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
    ]);

    // Every non-default aggregator must survive the scatter-gather —
    // the workers take the exact fold, the coordinator merges without
    // the min-only bound forwarding — and still page bit-identically
    // to the single node. The same concept is reused across
    // aggregators (cache hit on the repeats), so any divergence is
    // the fold itself, not training.
    let base = "positives=0,4&negatives=1&k=8";
    for aggregator in ["logsumexp", "generalized-mean", "noisy-or", "min-distance"] {
        let query = format!("{base}&aggregator={aggregator}");
        let response = get(coordinator.addr, &format!("/cluster/rank?{query}"));
        assert_eq!(
            status_of(&response),
            Some(200),
            "aggregator {aggregator} must serve"
        );
        let cluster = json_of(&response);
        assert_eq!(
            cluster.get("partial").and_then(Json::as_bool),
            Some(false),
            "healthy cluster must never degrade: {}",
            cluster.dump()
        );
        assert_eq!(
            cluster.get("aggregator").and_then(Json::as_str),
            Some(aggregator),
            "response must echo the aggregator: {}",
            cluster.dump()
        );
        let reference = json_of(&get(single.addr, &format!("/rank?{query}")));
        assert_eq!(
            ranking_pairs(&cluster),
            ranking_pairs(&reference),
            "cluster page diverged from single-node under {aggregator}"
        );
        assert_eq!(
            nldd_bits(&cluster),
            nldd_bits(&reference),
            "trained concept diverged under {aggregator}"
        );
    }

    // An explicit min-distance page is bit-identical to the implicit
    // default — the wire contract for requests that never name one.
    let implicit = json_of(&get(coordinator.addr, &format!("/cluster/rank?{base}")));
    let explicit = json_of(&get(
        coordinator.addr,
        &format!("/cluster/rank?{base}&aggregator=min-distance"),
    ));
    assert_eq!(
        implicit.get("aggregator").and_then(Json::as_str),
        Some("min-distance"),
        "the default must be echoed as min-distance: {}",
        implicit.dump()
    );
    assert_eq!(ranking_pairs(&implicit), ranking_pairs(&explicit));

    // An unknown label is a client error on both surfaces, not a
    // silent fallback to the default fold.
    for (addr, route) in [(coordinator.addr, "/cluster/rank"), (single.addr, "/rank")] {
        let response = get(addr, &format!("{route}?{base}&aggregator=softmax"));
        assert_eq!(
            status_of(&response),
            Some(400),
            "unknown aggregator must be rejected on {route}: {}",
            String::from_utf8_lossy(&response)
        );
    }
}

#[test]
fn worker_loss_degrades_gracefully_and_rejoin_restores_full_pages() {
    let scratch = sharded_scratch("degrade");
    let snapshot = scratch.snapshot();
    let worker_a = Daemon::worker(&snapshot, 0, 2);
    let worker_b = Daemon::worker(&snapshot, 1, 2);
    let coordinator = Daemon::coordinator(
        &snapshot,
        &[&worker_a, &worker_b],
        &[
            "--worker-deadline-ms",
            "2000",
            "--health-interval-ms",
            "100",
            "--eviction-threshold",
            "2",
        ],
    );
    let single = Daemon::spawn(&[
        "serve",
        "--snapshot",
        snapshot.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
    ]);

    // k covers the whole corpus so the degraded page is the complete
    // ranking over the surviving bags.
    let query = "positives=0,4&negatives=1&k=24";
    let healthy = json_of(&get(coordinator.addr, &format!("/cluster/rank?{query}")));
    assert_eq!(healthy.get("partial").and_then(Json::as_bool), Some(false));
    assert_eq!(
        healthy
            .get("ranking")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(24)
    );

    worker_b.kill();

    // Mid-load after the kill: zero client errors, every page flagged
    // partial with worker 1's shards (manifest positions 1 and 3).
    let mut degraded = None;
    for attempt in 0..6 {
        let response = get(coordinator.addr, &format!("/cluster/rank?{query}"));
        assert_eq!(
            status_of(&response),
            Some(200),
            "attempt {attempt}: a lost worker must never surface a client error"
        );
        let json = json_of(&response);
        assert_eq!(
            json.get("partial").and_then(Json::as_bool),
            Some(true),
            "attempt {attempt} must be flagged partial: {}",
            json.dump()
        );
        let missing: Vec<u64> = json
            .get("missing_shards")
            .and_then(Json::as_array)
            .expect("missing_shards")
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(missing, vec![1, 3], "attempt {attempt}: {}", json.dump());
        degraded = Some(json);
    }
    let degraded = degraded.expect("at least one degraded page");

    // The degraded page is exactly the healthy ranking with the
    // reported missing bag ranges filtered out.
    let ranges: Vec<(u64, u64)> = degraded
        .get("missing_ranges")
        .and_then(Json::as_array)
        .expect("missing_ranges")
        .iter()
        .map(|range| {
            (
                range.get("start").and_then(Json::as_u64).expect("start"),
                range.get("end").and_then(Json::as_u64).expect("end"),
            )
        })
        .collect();
    assert!(!ranges.is_empty(), "degraded pages must report bag ranges");
    let reference = json_of(&get(single.addr, &format!("/rank?{query}")));
    let expected: Vec<(u64, u64)> = ranking_pairs(&reference)
        .into_iter()
        .filter(|&(index, _)| {
            !ranges
                .iter()
                .any(|&(start, end)| index >= start && index < end)
        })
        .collect();
    assert_eq!(
        ranking_pairs(&degraded),
        expected,
        "degraded page must be the exact ranking over surviving shards"
    );

    // The health loop evicts the dead worker.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = json_of(&get(coordinator.addr, "/cluster/status"));
        let evicted = status
            .get("workers")
            .and_then(Json::as_array)
            .and_then(|workers| workers.get(1))
            .and_then(|w| w.get("healthy"))
            .and_then(Json::as_bool)
            == Some(false);
        if evicted {
            assert!(counter(&status, "worker_evictions_total") >= 1);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker 1 never evicted: {}",
            status.dump()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // A replacement at a fresh port re-registers and restores full
    // pages bit-identical to the healthy baseline.
    let replacement = Daemon::worker(&snapshot, 1, 2);
    let response = post(
        coordinator.addr,
        "/cluster/workers",
        &format!(r#"{{"index": 1, "addr": "{}"}}"#, replacement.addr),
    );
    assert_eq!(status_of(&response), Some(200), "re-registration succeeds");
    let restored = json_of(&get(coordinator.addr, &format!("/cluster/rank?{query}")));
    assert_eq!(restored.get("partial").and_then(Json::as_bool), Some(false));
    assert_eq!(
        ranking_pairs(&restored),
        ranking_pairs(&healthy),
        "rejoined cluster must serve the full page again"
    );
    let status = json_of(&get(coordinator.addr, "/cluster/status"));
    assert!(
        counter(&status, "worker_rejoins_total") >= 1,
        "{}",
        status.dump()
    );
}

#[test]
fn generation_skew_is_resynced_never_silently_merged() {
    let scratch = sharded_scratch("skew");
    let snapshot = scratch.snapshot();
    let worker_a = Daemon::worker(&snapshot, 0, 2);
    let worker_b = Daemon::worker(&snapshot, 1, 2);
    // A huge health interval keeps the probe loop out of the episode:
    // the rank path itself must detect and repair the skew.
    let coordinator = Daemon::coordinator(
        &snapshot,
        &[&worker_a, &worker_b],
        &[
            "--worker-deadline-ms",
            "10000",
            "--health-interval-ms",
            "600000",
        ],
    );

    // Advance the snapshot a generation on disk, then reload only the
    // coordinator: both workers are now one generation behind.
    let mut store = milr::store::ShardedDatabase::open(&snapshot).expect("reopen snapshot");
    store.flush().expect("bump the generation");
    let response = post(coordinator.addr, "/snapshot/reload", "");
    assert_eq!(status_of(&response), Some(200), "coordinator reload");

    // The next rank must answer at the new generation with a full page:
    // stale workers are rejected (409) and resynced within the request,
    // never silently merged into the new epoch.
    let json = json_of(&get(
        coordinator.addr,
        "/cluster/rank?positives=0,4&negatives=1&k=8",
    ));
    assert_eq!(
        json.get("generation").and_then(Json::as_u64),
        Some(2),
        "{}",
        json.dump()
    );
    assert_eq!(
        json.get("partial").and_then(Json::as_bool),
        Some(false),
        "resynced workers must serve the full page: {}",
        json.dump()
    );
    assert_eq!(
        json.get("ranking")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(8)
    );

    let status = json_of(&get(coordinator.addr, "/cluster/status"));
    assert!(
        counter(&status, "generation_mismatch_total") >= 1,
        "the skew must be detected, not ignored: {}",
        status.dump()
    );
    assert!(
        counter(&status, "worker_resyncs_total") >= 1,
        "stale workers must be resynced: {}",
        status.dump()
    );
}
