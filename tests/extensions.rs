//! Integration tests of the §5 extensions (colour features, edge
//! preprocessing, rotation instances), the solver ablation, and
//! persistence through the full pipeline.

use milr::core::config::Preprocessing;
use milr::core::features::color_image_to_bag;
use milr::core::storage::Store;
use milr::core::{eval, QuerySession, RankRequest, RetrievalConfig, RetrievalDatabase};
use milr::imgproc::RegionLayout;
use milr::mil::{Concept, ConstrainedSolver, WeightPolicy};
use milr::synth::SceneDatabase;

fn fast_config() -> RetrievalConfig {
    RetrievalConfig {
        resolution: 5,
        layout: RegionLayout::Small,
        policy: WeightPolicy::Identical,
        feedback_rounds: 1,
        initial_positives: 3,
        initial_negatives: 3,
        max_iterations: 30,
        ..RetrievalConfig::default()
    }
}

fn scenes() -> SceneDatabase {
    SceneDatabase::builder()
        .images_per_category(8)
        .seed(17)
        .dimensions(80, 60)
        .build()
}

fn run_and_score(
    retrieval: &RetrievalDatabase,
    config: &RetrievalConfig,
    target: usize,
    pool: Vec<usize>,
    test: Vec<usize>,
) -> f64 {
    let mut session = QuerySession::builder(retrieval)
        .config(config)
        .target(target)
        .pool(pool)
        .test(test)
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    let relevant = eval::relevance(&ranking, retrieval.labels(), target);
    eval::average_precision(&relevant)
}

#[test]
fn color_pipeline_retrieves_end_to_end() {
    let db = scenes();
    let config = fast_config();
    let bags: Vec<milr::mil::Bag> = db
        .images()
        .iter()
        .map(|img| color_image_to_bag(img, &config).unwrap())
        .collect();
    let retrieval = RetrievalDatabase::from_bags(bags, db.labels().to_vec()).unwrap();
    assert_eq!(retrieval.feature_dim(), 3 * config.feature_dim());
    let split = db.split(0.4, 4);
    let target = db.category_index("sunset").unwrap();
    let ap = run_and_score(&retrieval, &config, target, split.pool, split.test);
    assert!(
        ap > 0.3,
        "colour pipeline should retrieve sunsets: AP = {ap}"
    );
}

#[test]
fn edge_pipeline_retrieves_end_to_end() {
    let db = scenes();
    let config = RetrievalConfig {
        preprocessing: Preprocessing::SobelMagnitude,
        // Edge magnitudes have lower variance than raw intensity.
        variance_threshold: 5.0,
        ..fast_config()
    };
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let split = db.split(0.4, 5);
    let target = db.category_index("waterfall").unwrap();
    let ap = run_and_score(&retrieval, &config, target, split.pool, split.test);
    // The paper found edge features unsatisfying, not useless — they
    // must still function as a pipeline.
    assert!(
        ap > 0.25,
        "edge pipeline should at least beat random: AP = {ap}"
    );
}

#[test]
fn rotation_instances_flow_through_training() {
    let db = SceneDatabase::builder()
        .images_per_category(5)
        .seed(18)
        .dimensions(80, 60)
        .build();
    let config = RetrievalConfig {
        rotation_angles: vec![0.2],
        initial_positives: 2,
        initial_negatives: 2,
        ..fast_config()
    };
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    // Bags must be larger than without rotations.
    let plain_config = RetrievalConfig {
        rotation_angles: vec![],
        ..config.clone()
    };
    let plain = RetrievalDatabase::from_labelled_images(db.gray_images(), &plain_config).unwrap();
    let rotated_len = retrieval.bag(0).unwrap().len();
    let plain_len = plain.bag(0).unwrap().len();
    assert!(
        rotated_len > plain_len,
        "rotation instances must enlarge bags: {rotated_len} vs {plain_len}"
    );
    let split = db.split(0.4, 6);
    let target = db.category_index("field").unwrap();
    let ap = run_and_score(&retrieval, &config, target, split.pool, split.test);
    assert!(ap.is_finite() && ap > 0.0);
}

#[test]
fn penalty_solver_retrieves_like_projected_gradient() {
    let db = scenes();
    let base = RetrievalConfig {
        policy: WeightPolicy::SumConstraint { beta: 0.5 },
        ..fast_config()
    };
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &base).unwrap();
    let split = db.split(0.4, 7);
    let target = db.category_index("waterfall").unwrap();

    let ap_pg = run_and_score(
        &retrieval,
        &base,
        target,
        split.pool.clone(),
        split.test.clone(),
    );
    let pen_config = RetrievalConfig {
        constrained_solver: ConstrainedSolver::Penalty,
        ..base
    };
    let ap_pen = run_and_score(&retrieval, &pen_config, target, split.pool, split.test);
    assert!(
        (ap_pg - ap_pen).abs() < 0.35,
        "solvers should retrieve comparably: projected {ap_pg} vs penalty {ap_pen}"
    );
}

#[test]
fn database_persistence_preserves_query_results() {
    let db = scenes();
    let config = fast_config();
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let dir = std::env::temp_dir().join("milr_integration_storage");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenes_it.milrdb");
    let store = Store::default();
    store.save(&retrieval, &path).unwrap();
    let reloaded = store.open::<RetrievalDatabase>(&path).unwrap();

    let split = db.split(0.4, 8);
    let target = db.category_index("lake").unwrap();
    // Same session against both databases must give identical rankings.
    let mut s1 = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();
    let r1 = s1.run().unwrap();
    let mut s2 = QuerySession::builder(&reloaded)
        .config(&config)
        .target(target)
        .pool(split.pool)
        .test(split.test)
        .build()
        .unwrap();
    let r2 = s2.run().unwrap();
    assert_eq!(r1, r2, "persistence must not perturb any query result");
    std::fs::remove_file(path).ok();
}

#[test]
fn concept_persistence_round_trips_through_training() {
    let db = scenes();
    let config = fast_config();
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let split = db.split(0.4, 9);
    let target = db.category_index("mountain").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool)
        .test(split.test.clone())
        .build()
        .unwrap();
    session.run_round().unwrap();
    let concept = session.concept().unwrap();

    let dir = std::env::temp_dir().join("milr_integration_storage");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mountain_it.concept");
    let store = Store::default();
    store.save(concept, &path).unwrap();
    let reloaded = store.open::<Concept>(&path).unwrap();
    assert_eq!(&reloaded, concept);
    assert_eq!(
        retrieval
            .rank(concept, &RankRequest::over(split.test.clone()))
            .unwrap(),
        retrieval
            .rank(&reloaded, &RankRequest::over(split.test.clone()))
            .unwrap()
    );
    std::fs::remove_file(path).ok();
}
