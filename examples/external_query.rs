//! Querying the database with *external* example images — pictures that
//! are not in the collection, the way Fig. 3-6's interactive user works —
//! and dumping the learned concept as the Figs. 3-7/3-8/3-9 image maps.
//!
//! ```text
//! cargo run --release --example external_query
//! ```

use milr::core::{query_with_examples, visualize};
use milr::imgproc::pnm;
use milr::prelude::*;
use milr::synth::scenes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The database: 5 × 14 scenes, seeded.
    let db = SceneDatabase::builder()
        .images_per_category(14)
        .seed(808)
        .build();
    let config = RetrievalConfig::default();
    println!("preprocessing {} database images ...", db.len());
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();

    // The user's own photos: freshly generated waterfalls (and one field
    // as a negative) from a seed the database has never used.
    println!("rendering the user's example photos ...");
    let user_image = |category: usize, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        scenes::generate_scene(category, 128, 96, &mut rng).to_gray()
    };
    let waterfall = db.category_index("waterfall").unwrap();
    let field = db.category_index("field").unwrap();
    let positives = vec![
        milr::core::features::image_to_bag(&user_image(waterfall, 9001), &config).unwrap(),
        milr::core::features::image_to_bag(&user_image(waterfall, 9002), &config).unwrap(),
        milr::core::features::image_to_bag(&user_image(waterfall, 9003), &config).unwrap(),
    ];
    let negatives =
        vec![milr::core::features::image_to_bag(&user_image(field, 9004), &config).unwrap()];

    // One-shot query: train on the external bags, rank the whole database.
    let candidates: Vec<usize> = (0..retrieval.len()).collect();
    let (concept, ranking) =
        query_with_examples(&retrieval, &config, &positives, &negatives, &candidates).unwrap();

    println!("\ntop 10 database images for the user's waterfall photos:");
    let mut hits = 0;
    for (rank, &(index, d2)) in ranking.iter().take(10).enumerate() {
        let label = retrieval.labels()[index];
        if label == waterfall {
            hits += 1;
        }
        println!(
            "  #{:<2} image {:<3} {:<9} distance²={d2:.2}",
            rank + 1,
            index,
            db.categories()[label]
        );
    }
    println!("\n{hits} of the top 10 are waterfalls (base rate would give 2).");

    // Dump the learned concept in the paper's visual form.
    let dir = std::env::temp_dir().join("milr_external_query");
    std::fs::create_dir_all(&dir).unwrap();
    let point = visualize::concept_point_image(&concept).unwrap();
    let weights = visualize::concept_weight_image(&concept).unwrap();
    pnm::save_pgm(&point, dir.join("concept_point.pgm")).unwrap();
    pnm::save_pgm(&weights, dir.join("concept_weights.pgm")).unwrap();
    println!(
        "wrote the Fig 3-7-style t / w maps to {} (10x10 PGM files)",
        dir.display()
    );
}
