//! The §2.1.2 prediction view: instead of ranking, classify new images
//! TRUE/FALSE for a concept ("given a new example image … it should
//! determine whether it correspond to TRUE or FALSE. To allow for
//! uncertainty, the system may give a real value between 0 and 1").
//!
//! ```text
//! cargo run --release --example classification
//! ```

use milr::mil::{BagClassifier, BagLabel, ClassificationReport, MilDataset};
use milr::prelude::*;

fn main() {
    let db = SceneDatabase::builder()
        .images_per_category(16)
        .seed(77)
        .build();
    let config = RetrievalConfig {
        feedback_rounds: 2,
        ..RetrievalConfig::default()
    };
    println!("preprocessing {} images ...", db.len());
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let split = db.split(0.25, 13);
    let target = db.category_index("sunset").unwrap();

    // Train the concept through the usual query session.
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();
    session.run().unwrap();
    let concept = session.concept().unwrap().clone();

    // Fit a TRUE/FALSE threshold on the training examples the session
    // actually used.
    let mut training = MilDataset::new();
    for &i in session.positives() {
        training
            .push(retrieval.bag(i).unwrap().clone(), BagLabel::Positive)
            .unwrap();
    }
    for &i in session.negatives() {
        training
            .push(retrieval.bag(i).unwrap().clone(), BagLabel::Negative)
            .unwrap();
    }
    let classifier = BagClassifier::fit(concept, &training);
    println!(
        "fitted threshold: Pr >= {:.4} means TRUE ('contains a sunset')",
        classifier.threshold()
    );

    // Evaluate on the held-out test set.
    let mut test = MilDataset::new();
    for &i in &split.test {
        let label = if retrieval.labels()[i] == target {
            BagLabel::Positive
        } else {
            BagLabel::Negative
        };
        test.push(retrieval.bag(i).unwrap().clone(), label).unwrap();
    }
    let report = ClassificationReport::evaluate(&classifier, &test);
    println!("\ntest-set confusion over {} images:", report.total());
    println!("  true positives:  {}", report.true_positives);
    println!("  false positives: {}", report.false_positives);
    println!("  true negatives:  {}", report.true_negatives);
    println!("  false negatives: {}", report.false_negatives);
    println!("\n  accuracy  {:.3}", report.accuracy());
    println!("  precision {:.3}", report.precision());
    println!("  recall    {:.3}", report.recall());
    println!("  F1        {:.3}", report.f1());

    // Show the soft outputs for a few test images.
    println!("\nsample soft outputs (Pr that the image matches the concept):");
    for &i in split.test.iter().take(8) {
        let p = classifier.probability(retrieval.bag(i).unwrap());
        let truth = retrieval.labels()[i] == target;
        println!(
            "  image {:<3} Pr = {:.4}  -> {:<5}  (truth: {})",
            i,
            p,
            if classifier.classify(retrieval.bag(i).unwrap()) {
                "TRUE"
            } else {
                "FALSE"
            },
            if truth { "sunset" } else { "other" }
        );
    }
}
