//! Side-by-side comparison of the paper's four weight-control policies
//! (§3.6) on one query, showing both retrieval quality and the learned
//! weight structure that explains it.
//!
//! ```text
//! cargo run --release --example weight_policies
//! ```

use milr::core::eval;
use milr::prelude::*;

fn main() {
    let db = SceneDatabase::builder()
        .images_per_category(30)
        .seed(99)
        .build();
    let target = db.category_index("waterfall").unwrap();
    let base = RetrievalConfig::default();
    println!("preprocessing {} images ...\n", db.len());
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &base).unwrap();
    let split = db.split(0.2, 1);

    let policies = [
        WeightPolicy::OriginalDd,
        WeightPolicy::Identical,
        WeightPolicy::AlphaHack { alpha: 50.0 },
        WeightPolicy::SumConstraint { beta: 0.5 },
    ];

    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>12} {:>10}",
        "policy", "avg-prec", "AUC", "mean w", "top-10 mass", "-log DD"
    );
    for policy in policies {
        let config = RetrievalConfig {
            policy,
            ..base.clone()
        };
        let mut session = QuerySession::builder(&retrieval)
            .config(&config)
            .target(target)
            .pool(split.pool.clone())
            .test(split.test.clone())
            .build()
            .unwrap();
        let ranking = session.run().unwrap();
        let relevant = eval::relevance(&ranking, retrieval.labels(), target);
        let concept = session.concept().unwrap();
        println!(
            "{:<28} {:>9.3} {:>9.3} {:>9.3} {:>12.3} {:>10.2}",
            policy.label(),
            eval::average_precision(&relevant),
            eval::recall_auc(&relevant),
            concept.mean_weight(),
            concept.weight_concentration(concept.weights().len() / 10),
            session.nldd(),
        );
    }

    println!(
        "\nreading the weight columns (paper §3.6): unconstrained DD concentrates the\n\
         weight mass on a few dimensions (top-10% mass near 1) — a too-simple concept\n\
         that can fail to generalise; identical weights are uniform by construction\n\
         (top-10% mass = 0.10); the α-hack and the Σw ≥ β·n constraint sit in between."
    );
}
