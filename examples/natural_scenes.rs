//! The paper's Figure 4-3 scenario: retrieving waterfalls from a
//! natural-scene database with three rounds of simulated relevance
//! feedback, reporting the per-round improvement and the final recall /
//! precision-recall curves.
//!
//! ```text
//! cargo run --release --example natural_scenes [-- <category>]
//! ```
//!
//! `category` is one of `waterfall`, `mountain`, `field`, `lake`,
//! `sunset` (default `waterfall`).

use milr::core::eval;
use milr::prelude::*;

fn main() {
    let category_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "waterfall".to_owned());

    // A mid-sized scene database: 5 × 40 images.
    let db = SceneDatabase::builder()
        .images_per_category(40)
        .seed(2026)
        .build();
    let target = db.category_index(&category_name).unwrap_or_else(|| {
        panic!(
            "unknown category {category_name:?}; try {:?}",
            db.categories()
        )
    });

    let config = RetrievalConfig::default();
    println!("preprocessing {} images ...", db.len());
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();

    // The paper's protocol: 20% stratified pool, 3 rounds, top-5 false
    // positives promoted per round.
    let split = db.split(0.2, 11);
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();

    println!(
        "retrieving '{category_name}' with {} initial positives, {} negatives\n",
        session.positives().len(),
        session.negatives().len()
    );

    for round in 1..=config.feedback_rounds {
        let pool_ranking = session.run_round().unwrap();
        let hits10 = pool_ranking
            .iter()
            .take(10)
            .filter(|&&(i, _)| retrieval.labels()[i] == target)
            .count();
        println!(
            "round {round}: pool precision@10 = {:.2}  (−log DD = {:.2})",
            hits10 as f64 / 10.0,
            session.nldd()
        );
        if round < config.feedback_rounds {
            let added = session
                .add_false_positives(config.false_positives_per_round)
                .unwrap();
            println!("         added {added} false positives as negatives");
        }
    }

    let ranking = session.rank(&RankRequest::test()).unwrap();
    let relevant = eval::relevance(&ranking, retrieval.labels(), target);
    let recall = eval::recall_curve(&relevant);
    let pr = eval::precision_recall_curve(&relevant);

    println!("\nfinal test retrieval over {} images:", ranking.len());
    println!(
        "  average precision: {:.3}",
        eval::average_precision(&relevant)
    );
    println!(
        "  recall AUC:        {:.3} (random = 0.5)",
        eval::recall_auc(&relevant)
    );
    println!(
        "  base rate:         {:.3}",
        eval::random_precision_level(&relevant)
    );

    println!("\nrecall curve (paper Fig. 4-5):");
    let step = (recall.len() / 8).max(1);
    for (i, r) in recall.iter().enumerate().step_by(step) {
        let bar = "#".repeat((r * 40.0) as usize);
        println!("  after {:>3}: {r:.2} {bar}", i + 1);
    }

    println!("\nprecision-recall curve (paper Fig. 4-6):");
    for level in [0.1, 0.25, 0.5, 0.75, 1.0] {
        if let Some(&(_, p)) = pr.iter().find(|&&(r, _)| r >= level) {
            println!("  recall {level:.2} -> precision {p:.2}");
        }
    }
}
