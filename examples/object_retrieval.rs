//! The paper's Figure 4-4 scenario: retrieving a product category from
//! the 19-category object database, and showing which image *region* the
//! learned concept matched (the point of multiple-instance learning:
//! the system is never told where the object is).
//!
//! ```text
//! cargo run --release --example object_retrieval [-- <category>]
//! ```

use milr::prelude::*;

fn main() {
    let category_name = std::env::args().nth(1).unwrap_or_else(|| "car".to_owned());

    // The full paper-sized object collection: 19 categories × 12 = 228.
    let db = ObjectDatabase::builder().seed(5).build();
    let target = db.category_index(&category_name).unwrap_or_else(|| {
        panic!(
            "unknown category {category_name:?}; try one of {:?}",
            db.categories()
        )
    });

    let config = RetrievalConfig {
        // The paper found identical weights often win on the object
        // database (uniform backgrounds, little variation); β=0.25 is its
        // other strong setting (Fig. 4-14).
        policy: WeightPolicy::SumConstraint { beta: 0.25 },
        ..RetrievalConfig::default()
    };
    println!("preprocessing {} object images ...", db.len());
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();

    let split = db.split(0.25, 3);
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();
    let ranking = session.run().unwrap();

    println!("\ntop 12 test retrievals for '{category_name}':");
    for (rank, &(index, d2)) in ranking.iter().take(12).enumerate() {
        let label = retrieval.labels()[index];
        println!(
            "  #{:<2} image {:<3} {} (category {:<9}) distance²={d2:.2}",
            rank + 1,
            index,
            if label == target { "HIT " } else { "miss" },
            db.categories()[label],
        );
    }

    // Which region did the concept match? Show for the best test hit.
    let concept = session.concept().expect("trained");
    if let Some(&(best, _)) = ranking
        .iter()
        .find(|&&(i, _)| retrieval.labels()[i] == target)
    {
        let bag = retrieval.bag(best).unwrap();
        let instance = concept.best_instance(bag);
        let region = instance / 2;
        let mirrored = instance % 2 == 1;
        println!(
            "\nfor test image {best}, the concept matched bag instance {instance} \
             (region #{region}{}) of {} instances",
            if mirrored { ", mirrored" } else { "" },
            bag.len()
        );
    }

    let relevant: Vec<bool> = ranking
        .iter()
        .map(|&(i, _)| retrieval.labels()[i] == target)
        .collect();
    println!(
        "\naverage precision {:.3} over {} test images (base rate {:.3})",
        milr::core::eval::average_precision(&relevant),
        relevant.len(),
        milr::core::eval::random_precision_level(&relevant),
    );
}
