//! Automatic β selection (§5 future work): validate candidate β values
//! on the potential-training pool, then run the full protocol with the
//! winner.
//!
//! ```text
//! cargo run --release --example beta_tuning
//! ```

use milr::core::{eval, tuning::select_beta};
use milr::mil::WeightPolicy;
use milr::prelude::*;

fn main() {
    let db = SceneDatabase::builder()
        .images_per_category(20)
        .seed(55)
        .build();
    let base = RetrievalConfig::default();
    println!("preprocessing {} images ...", db.len());
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &base).unwrap();
    let split = db.split(0.25, 6);
    let target = db.category_index("waterfall").unwrap();

    // Step 1: score each candidate β by one training round, ranked
    // against the pool (whose labels the protocol may consult).
    let candidates = [0.0, 0.25, 0.5, 0.75, 1.0];
    println!("validating beta candidates on the pool ...");
    let selection = select_beta(&retrieval, &base, target, &split.pool, &candidates).unwrap();
    println!("\n  beta   pool average precision");
    for &(beta, score) in &selection.scores {
        let marker = if beta == selection.best_beta {
            "  <- chosen"
        } else {
            ""
        };
        println!("  {beta:<5}  {score:.3}{marker}");
    }

    // Step 2: full protocol with the winner.
    let config = RetrievalConfig {
        policy: WeightPolicy::SumConstraint {
            beta: selection.best_beta,
        },
        ..base
    };
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    let relevant = eval::relevance(&ranking, retrieval.labels(), target);
    println!(
        "\nfull 3-round protocol with beta = {}: test average precision {:.3} \
         (base rate {:.3})",
        selection.best_beta,
        eval::average_precision(&relevant),
        eval::random_precision_level(&relevant)
    );
}
