//! Quickstart: build a tiny synthetic database, train a Diverse Density
//! concept from example images, and retrieve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use milr::prelude::*;

fn main() {
    // 1. A small natural-scene database (stands in for the COREL
    //    collection): 5 categories × 10 images, all seeded.
    let db = SceneDatabase::builder()
        .images_per_category(10)
        .seed(42)
        .build();
    println!(
        "database: {} images, categories {:?}",
        db.len(),
        db.categories()
    );

    // 2. Preprocess every image into a bag of normalised region features
    //    (20 overlapping regions + mirrors, smoothed to 10×10).
    let config = RetrievalConfig {
        feedback_rounds: 2,
        initial_positives: 3,
        initial_negatives: 3,
        ..RetrievalConfig::default()
    };
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config)
        .expect("preprocessing failed");
    println!(
        "preprocessed into bags of {}-dimensional instances",
        retrieval.feature_dim()
    );

    // 3. Split into a potential-training pool (labels visible for
    //    simulated feedback) and a test set.
    let split = db.split(0.3, 7);

    // 4. Query for waterfalls: train, promote false positives, retrain,
    //    then rank the held-out test set.
    let waterfall = db.category_index("waterfall").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(waterfall)
        .pool(split.pool)
        .test(split.test)
        .build()
        .expect("query setup failed");
    let ranking = session.run().expect("query failed");

    println!("\ntop 10 retrieved test images (label 0 = waterfall):");
    for (rank, (index, distance)) in ranking.iter().take(10).enumerate() {
        let label = retrieval.labels()[*index];
        let marker = if label == waterfall { "HIT " } else { "miss" };
        println!(
            "  #{:<2} image {:<3} [{}] category={} distance²={:.2}",
            rank + 1,
            index,
            marker,
            db.categories()[label],
            distance
        );
    }

    // 5. Score the ranking.
    let relevant: Vec<bool> = ranking
        .iter()
        .map(|&(i, _)| retrieval.labels()[i] == waterfall)
        .collect();
    let ap = milr::core::eval::average_precision(&relevant);
    let base = milr::core::eval::random_precision_level(&relevant);
    println!("\naverage precision {ap:.3} (random retrieval would give {base:.3})");
}
