//! Persistence: preprocess once, save the database and a trained
//! concept, reload both, and keep querying without touching pixels.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use milr::core::eval;
use milr::mil::Concept;
use milr::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("milr_persistence_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let db_path = dir.join("scenes.milrdb");
    let concept_path = dir.join("waterfall.concept");

    // --- First "session": preprocess, train, persist. ------------------
    let db = SceneDatabase::builder()
        .images_per_category(12)
        .seed(31)
        .build();
    let config = RetrievalConfig {
        feedback_rounds: 2,
        initial_positives: 3,
        initial_negatives: 3,
        ..RetrievalConfig::default()
    };
    println!("preprocessing {} images ...", db.len());
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let store = Store::default();
    store.save(&retrieval, &db_path).unwrap();
    println!(
        "saved preprocessed database: {} ({} bags, {} dims, {} bytes)",
        db_path.display(),
        retrieval.len(),
        retrieval.feature_dim(),
        std::fs::metadata(&db_path).unwrap().len()
    );

    let split = db.split(0.3, 2);
    let target = db.category_index("waterfall").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();
    session.run().unwrap();
    let concept = session.concept().unwrap();
    store.save(concept, &concept_path).unwrap();
    println!("saved trained concept: {}", concept_path.display());

    // --- Second "session": reload everything and query. ----------------
    let reloaded_db = store.open::<RetrievalDatabase>(&db_path).unwrap();
    let reloaded_concept = store.open::<Concept>(&concept_path).unwrap();
    println!(
        "\nreloaded database ({} bags) and concept ({} dims)",
        reloaded_db.len(),
        reloaded_concept.dim()
    );

    let ranking = reloaded_db
        .rank(&reloaded_concept, &RankRequest::over(split.test.clone()))
        .unwrap();
    let relevant: Vec<bool> = ranking
        .iter()
        .map(|&(i, _)| reloaded_db.labels()[i] == target)
        .collect();
    println!(
        "retrieval from the reloaded artifacts: average precision {:.3} over {} images",
        eval::average_precision(&relevant),
        relevant.len()
    );

    // The reloaded ranking is identical to the in-memory one.
    let original_ranking = retrieval
        .rank(concept, &RankRequest::over(split.test.clone()))
        .unwrap();
    assert_eq!(
        ranking, original_ranking,
        "persistence must not change rankings"
    );
    println!("ranking identical to the in-memory session — persistence is lossless.");

    std::fs::remove_file(&db_path).ok();
    std::fs::remove_file(&concept_path).ok();
}
